package lp

// denseInverse is the dense backend's basis representation: an explicit
// row-major m×m inverse, updated in Θ(m²) per pivot by applying the eta
// transform to every row. It never needs refactorization (the inverse is
// maintained directly) but pays dimension-proportional cost on every
// operation regardless of sparsity — which is exactly why the sparse
// revised backend exists.
type denseInverse struct {
	m    int
	binv []float64 // row-major m×m
	tmp  []float64 // ftran scratch
}

func (d *denseInverse) reset(m int) {
	d.m = m
	need := m * m
	if cap(d.binv) < need {
		d.binv = make([]float64, need)
	} else {
		d.binv = d.binv[:need]
		for i := range d.binv {
			d.binv[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		d.binv[i*m+i] = 1
	}
	if cap(d.tmp) < m {
		d.tmp = make([]float64, m)
	}
	d.tmp = d.tmp[:m]
}

func (d *denseInverse) ftran(v []float64) {
	m := d.m
	z := d.tmp[:m]
	for i := range z {
		z[i] = 0
	}
	for k := 0; k < m; k++ {
		vk := v[k]
		if vk == 0 {
			continue
		}
		// Column k of B⁻¹ scaled by v[k].
		for i := 0; i < m; i++ {
			z[i] += d.binv[i*m+k] * vk
		}
	}
	copy(v, z)
}

func (d *denseInverse) btran(y []float64) {
	m := d.m
	z := d.tmp[:m]
	for i := range z {
		z[i] = 0
	}
	for i := 0; i < m; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := d.binv[i*m : i*m+m]
		for k, b := range row {
			z[k] += yi * b
		}
	}
	copy(y, z)
}

func (d *denseInverse) btranUnit(r int, y []float64) {
	copy(y, d.binv[r*d.m:r*d.m+d.m])
}

func (d *denseInverse) update(r int, w []float64) {
	m := d.m
	inv := 1 / w[r]
	prow := d.binv[r*m : r*m+m]
	for k := range prow {
		prow[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := w[i]
		if f == 0 {
			continue
		}
		row := d.binv[i*m : i*m+m]
		for k, p := range prow {
			row[k] -= f * p
		}
	}
}

func (d *denseInverse) shouldRefactor() bool { return false }
func (d *denseInverse) markRefactored()      {}

func (d *denseInverse) clone() basisRep {
	return &denseInverse{
		m:    d.m,
		binv: append([]float64(nil), d.binv...),
		tmp:  make([]float64, d.m),
	}
}
