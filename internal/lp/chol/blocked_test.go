package chol

import (
	"math"
	"math/rand"
	"testing"
)

// factorBytes collects every numeric output of a factorization that the
// solver consumes: the sparse L values, the dense-tail block, the pivots,
// and the clamp count. Byte-level equality of these is the blocked-tail
// kernel's contract with the scalar one.
func factorBytes(f *Factor, sym *Symbolic) (lx, dense, d []float64, clamped int) {
	lnnzTotal := 0
	for j := 0; j < sym.n; j++ {
		lnnzTotal += int(f.lnz[j])
	}
	lx = make([]float64, 0, lnnzTotal)
	for j := 0; j < sym.n; j++ {
		p0 := f.lp[j]
		lx = append(lx, f.lx[p0:p0+f.lnz[j]]...)
	}
	dense = append([]float64(nil), f.dense...)
	d = append([]float64(nil), f.d[:sym.n]...)
	return lx, dense, d, f.Clamped
}

// TestBlockedTailMatchesScalarBytes pins the blocked dense-tail kernel to
// the scalar one bit for bit: on random SPD matrices with dense-coupled
// tails, every float the two paths produce must be identical (==, not
// within tolerance), including the clamp counter on near-singular inputs.
func TestBlockedTailMatchesScalarBytes(t *testing.T) {
	defer func(old bool) { blockedTail = old }(blockedTail)
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		n, nnzPerCol, denseTail int
		minPiv                  float64
	}{
		{60, 2, 40, 1e-12},
		{90, 3, 50, 1e-12},
		{120, 2, 70, 1e-12},
		{80, 2, 64, 1e-12}, // tail a multiple of the panel width
		{75, 2, 33, 1e-12}, // tail just over one panel
		{50, 2, 45, 1e-1},  // aggressive clamping engaged
	}
	for ci, c := range cases {
		for trial := 0; trial < 4; trial++ {
			ptr, ind, vals := randomSPD(rng, c.n, c.nnzPerCol, c.denseTail)
			sym := Analyze(c.n, ptr, ind)
			if sym.TailSize() == 0 {
				t.Fatalf("case %d: no dense tail detected (n=%d tail=%d)", ci, c.n, c.denseTail)
			}

			blockedTail = false
			var fs Factor
			sym.Factorize(ptr, ind, vals, c.minPiv, &fs)
			sLx, sDense, sD, sClamped := factorBytes(&fs, sym)

			blockedTail = true
			var fb Factor
			sym.Factorize(ptr, ind, vals, c.minPiv, &fb)
			bLx, bDense, bD, bClamped := factorBytes(&fb, sym)

			if sClamped != bClamped {
				t.Fatalf("case %d trial %d: clamp count scalar=%d blocked=%d", ci, trial, sClamped, bClamped)
			}
			for i := range sD {
				if sD[i] != bD[i] {
					t.Fatalf("case %d trial %d: d[%d] scalar=%x blocked=%x",
						ci, trial, i, math.Float64bits(sD[i]), math.Float64bits(bD[i]))
				}
			}
			if len(sDense) != len(bDense) {
				t.Fatalf("case %d trial %d: dense len %d vs %d", ci, trial, len(sDense), len(bDense))
			}
			for i := range sDense {
				if sDense[i] != bDense[i] {
					t.Fatalf("case %d trial %d: dense[%d] scalar=%x blocked=%x",
						ci, trial, i, math.Float64bits(sDense[i]), math.Float64bits(bDense[i]))
				}
			}
			for i := range sLx {
				if sLx[i] != bLx[i] {
					t.Fatalf("case %d trial %d: lx[%d] scalar=%x blocked=%x",
						ci, trial, i, math.Float64bits(sLx[i]), math.Float64bits(bLx[i]))
				}
			}

			// And the factorization must still be a correct one.
			checkSolve(t, c.n, ptr, ind, vals, sym, &fb, rng)
		}
	}
}

// BenchmarkCholDenseTail measures the dense-tail factorization, blocked
// against scalar, on the shape the IPM produces: a sparse head coupled to
// a wide dense trailing block.
func BenchmarkCholDenseTail(b *testing.B) {
	defer func(old bool) { blockedTail = old }(blockedTail)
	rng := rand.New(rand.NewSource(3))
	for _, size := range []struct{ n, tail int }{{240, 160}, {480, 320}} {
		ptr, ind, vals := randomSPD(rng, size.n, 3, size.tail)
		sym := Analyze(size.n, ptr, ind)
		for _, mode := range []struct {
			name    string
			blocked bool
		}{{"scalar", false}, {"blocked", true}} {
			b.Run(mode.name+"/n="+itoa(size.n)+"/tail="+itoa(size.tail), func(b *testing.B) {
				blockedTail = mode.blocked
				var f Factor
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sym.Factorize(ptr, ind, vals, 1e-12, &f)
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
