// Package chol is a sparse symmetric positive-definite LDLᵀ factorization
// kernel: symbolic analysis (fill-reducing minimum-degree ordering,
// elimination tree, exact column counts) done once per pattern, then
// repeated numeric factorizations and solves against changing values on
// that same pattern. The trailing columns that symbolic analysis finds
// nearly full are stored and processed as one dense block (a relaxed
// supernode tail), which removes the indirection exactly where sparse
// storage stops paying.
//
// The split mirrors how an interior-point method consumes it — one Analyze
// per LP, one Factorize+Solve pair per iteration on the fixed normal-
// equations pattern A·D·Aᵀ — but the kernel is self-contained: any solver
// with a fixed SPD pattern and changing values can sit on top of it. All
// numeric scratch lives in the reusable Factor, grow-only like the simplex
// workspace, so iteration k+1 allocates nothing.
package chol

import "fmt"

// Symbolic is the reusable symbolic analysis of an SPD pattern: the
// fill-reducing permutation, the elimination tree of the permuted pattern,
// per-column fill counts and the dense-tail boundary. It is immutable after
// Analyze and safe to share across Factors (and goroutines).
type Symbolic struct {
	n     int
	perm  []int32 // perm[k] = original index of the k-th pivot
	iperm []int32
	// parent is the elimination tree over permuted indices; parent[j] > j
	// or -1 at a root.
	parent []int32
	// count[j] = nonzeros of permuted column j of L including the diagonal
	// (exact, from the true pattern — the dense tail only ever adds).
	count []int32
	// tail is the first permuted column of the dense trailing block
	// (tail == n when the pattern has no dense tail worth blocking).
	tail int
	// lnnz is the subdiagonal entry count of the sparse columns [0, tail).
	lnnz int
}

// N returns the matrix dimension.
func (s *Symbolic) N() int { return s.n }

// TailSize returns the width of the dense trailing block (0 = none).
func (s *Symbolic) TailSize() int { return s.n - s.tail }

// LNNZ returns the subdiagonal nonzero count of the sparse part of L.
func (s *Symbolic) LNNZ() int { return s.lnnz }

const (
	// tailMinN: patterns smaller than this skip dense-tail detection —
	// below it the indirection being removed doesn't cost anything yet.
	tailMinN = 48
	// tailMinSize: a detected tail narrower than this stays sparse.
	tailMinSize = 16
	// tailMaxSize caps the dense block (its storage is s²/2 floats).
	tailMaxSize = 2048
	// tailDensity: a column joins the tail while its true fill is at least
	// this fraction of full.
	tailDensity = 0.6
)

// Analyze runs the symbolic phase on a full symmetric pattern in CSC/CSR
// form (each off-diagonal entry present in both its row and its column;
// diagonal entries optional; duplicates tolerated). Only the pattern is
// read — values come later, per Factorize.
func Analyze(n int, ptr, ind []int32) *Symbolic {
	s := &Symbolic{n: n, tail: n}
	s.perm = minDegree(n, ptr, ind)
	s.iperm = make([]int32, n)
	for k, o := range s.perm {
		s.iperm[o] = int32(k)
	}

	// Elimination tree of the permuted pattern (Liu's ancestor algorithm
	// with path compression).
	s.parent = make([]int32, n)
	ancestor := make([]int32, n)
	for k := 0; k < n; k++ {
		s.parent[k] = -1
		ancestor[k] = -1
		ko := s.perm[k]
		for p := ptr[ko]; p < ptr[ko+1]; p++ {
			i := s.iperm[ind[p]]
			for i != -1 && i < int32(k) {
				inext := ancestor[i]
				ancestor[i] = int32(k)
				if inext == -1 {
					s.parent[i] = int32(k)
				}
				i = inext
			}
		}
	}

	// Column counts: for each row k, the row pattern is the union of etree
	// paths from the row's adjacency up toward k; every visited column
	// gains one entry. O(nnz(L)) via per-row flags.
	s.count = make([]int32, n)
	flag := make([]int32, n)
	for k := range flag {
		flag[k] = -1
		s.count[k] = 1 // diagonal
	}
	for k := 0; k < n; k++ {
		flag[k] = int32(k)
		ko := s.perm[k]
		for p := ptr[ko]; p < ptr[ko+1]; p++ {
			j := s.iperm[ind[p]]
			for j != -1 && flag[j] != int32(k) {
				flag[j] = int32(k)
				s.count[j]++
				j = s.parent[j]
			}
		}
	}

	// Dense tail: the longest suffix of columns whose true fill stays
	// above tailDensity of full, capped at tailMaxSize.
	if n >= tailMinN {
		t := n
		for t > 0 && n-t < tailMaxSize {
			j := t - 1
			full := n - j
			if float64(s.count[j]) < tailDensity*float64(full) {
				break
			}
			t = j
		}
		if n-t >= tailMinSize {
			s.tail = t
		}
	}
	for j := 0; j < s.tail; j++ {
		s.lnnz += int(s.count[j]) - 1
	}
	return s
}

// Factor holds one numeric LDLᵀ factorization plus all scratch needed to
// recompute it. A zero Factor is ready for use; buffers grow to the
// pattern's size on first Factorize and are reused afterwards. A Factor is
// bound to the Symbolic of its last Factorize and is not safe for
// concurrent use.
type Factor struct {
	sym *Symbolic

	lp  []int32 // sparse column starts (capacity layout from column counts)
	lnz []int32 // entries appended so far per sparse column
	li  []int32
	lx  []float64
	d   []float64

	// Dense trailing block: packed strict lower triangle, column-major
	// (column c of the block holds rows tail+c+1 … n−1 contiguously).
	dense    []float64
	denseOff []int32
	// rawPanel holds the pre-normalization ("raw", = L·d) values of the
	// current panel's columns during the blocked tail factorization. The
	// trailing rank-w update needs raw values as multiplicands to reproduce
	// the scalar kernel's arithmetic exactly (see factorDenseTail).
	rawPanel []float64

	y       []float64
	pattern []int32
	flag    []int32
	flagK   int32 // rolling stamp base so flag never needs clearing
	z       []float64

	// Clamped counts pivots raised to minPiv by the last Factorize; a
	// handful is routine regularization, a large fraction means the matrix
	// was far from positive definite.
	Clamped int
}

func growi32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Factorize computes the LDLᵀ factorization of the matrix whose full
// symmetric pattern was analyzed into sym and whose values are given in
// the same (ptr, ind, vals) layout. Pivots below minPiv are clamped to it
// (static regularization — pass the caller's δ > 0); f.Clamped reports how
// many were. The factorization is up-looking per row (LDL.c style): each
// row's sparse pattern is the elimination-tree reach of its adjacency, and
// rows inside the dense tail skip pattern discovery for the tail columns
// entirely.
func (sym *Symbolic) Factorize(ptr, ind []int32, vals []float64, minPiv float64, f *Factor) {
	n, tail := sym.n, sym.tail
	f.sym = sym
	f.Clamped = 0

	f.lp = growi32(f.lp, n+1)
	f.lnz = growi32(f.lnz, n)
	f.lp[0] = 0
	for j := 0; j < n; j++ {
		w := int32(0)
		if j < tail {
			w = sym.count[j] - 1
		}
		f.lp[j+1] = f.lp[j] + w
		f.lnz[j] = 0
	}
	f.li = growi32(f.li, sym.lnnz)
	f.lx = growf(f.lx, sym.lnnz)
	f.d = growf(f.d, n)

	s := n - tail
	dn := s * (s - 1) / 2
	f.denseOff = growi32(f.denseOff, s+1)
	f.denseOff[0] = 0
	for c := 0; c < s; c++ {
		f.denseOff[c+1] = f.denseOff[c] + int32(s-1-c)
	}
	f.dense = growf(f.dense, dn)

	if cap(f.y) < n {
		f.y = make([]float64, n) // must start (and stay) all-zero
	}
	y := f.y[:n]
	f.pattern = growi32(f.pattern, n)
	if cap(f.flag) < n || f.flagK > 1<<30 {
		f.flag = make([]int32, n)
		for i := range f.flag {
			f.flag[i] = -1
		}
		f.flagK = 0
	}
	flag := f.flag[:n]
	base := f.flagK
	f.flagK += int32(n)

	parent := sym.parent
	for k := 0; k < n; k++ {
		fk := base + int32(k)
		flag[k] = fk
		dk := 0.0
		top := n
		ko := sym.perm[k]
		for p := ptr[ko]; p < ptr[ko+1]; p++ {
			j := int(sym.iperm[ind[p]])
			if j > k {
				continue
			}
			v := vals[p]
			if j == k {
				dk += v
				continue
			}
			y[j] += v
			if j >= tail {
				continue // covered by the dense sweep, no reach needed
			}
			// March up the etree until a flagged node or the tail; the
			// local segment is reversed onto the stack top so the final
			// pattern is in topological (descendants-first) order.
			ln := 0
			for jj := j; jj >= 0 && jj < tail && flag[jj] != fk; jj = int(parent[jj]) {
				f.pattern[ln] = int32(jj)
				ln++
				flag[jj] = fk
			}
			for ln > 0 {
				ln--
				top--
				f.pattern[top] = f.pattern[ln]
			}
		}

		// Sparse columns of the row pattern.
		for t := top; t < n; t++ {
			i := int(f.pattern[t])
			yi := y[i]
			y[i] = 0
			p0 := f.lp[i]
			pe := p0 + f.lnz[i]
			for p := p0; p < pe; p++ {
				y[f.li[p]] -= f.lx[p] * yi
			}
			l := yi / f.d[i]
			dk -= l * yi
			f.li[pe] = int32(k)
			f.lx[pe] = l
			f.lnz[i]++
		}

		if blockedTail && k >= tail {
			// Blocked mode: park the raw Schur row (post-sparse) in the
			// packed block and the partial diagonal in d; the tail is
			// factored in panels after the row loop (factorDenseTail).
			for j := tail; j < k; j++ {
				f.dense[f.denseOff[j-tail]+int32(k-j-1)] = y[j]
				y[j] = 0
			}
			f.d[k] = dk
			continue
		}

		// Dense tail columns [tail, k): all present by construction.
		for i := tail; i < k; i++ {
			yi := y[i]
			col := f.dense[f.denseOff[i-tail]:]
			l := 0.0
			if yi != 0 {
				y[i] = 0
				for r := i + 1; r < k; r++ {
					y[r] -= col[r-i-1] * yi
				}
				l = yi / f.d[i]
				dk -= l * yi
			}
			col[k-i-1] = l
		}

		if dk < minPiv {
			dk = minPiv
			f.Clamped++
		}
		f.d[k] = dk
	}

	if blockedTail && tail < n {
		f.factorDenseTail(minPiv)
	}
}

// blockedTail switches the dense supernode tail between the blocked
// panel×panel factorization (default) and the original up-looking scalar
// loop. The two produce byte-identical factors (the blocked kernel
// reproduces the scalar kernel's per-entry rounding sequence); the
// differential test flips this to prove it.
var blockedTail = true

// tailPanel is the panel width of the blocked dense-tail factorization.
const tailPanel = 32

// factorDenseTail runs a right-looking blocked LDLᵀ over the packed dense
// block. On entry f.dense holds the raw Schur rows (scattered by the main
// row loop) and f.d[tail:] the partial diagonals; on exit f.dense holds the
// normalized L values in the same packed layout the scalar path produces,
// and f.d[tail:] the clamped pivots.
//
// Byte-identical arithmetic with the up-looking scalar loop is a designed
// invariant, not an accident. The scalar loop applies, to every entry
// (k, j) of the block, the individually rounded updates
//
//	t -= fl(L[j,i] · raw[k,i])   for i = tail … j−1, ascending,
//
// where raw[k,i] is row k's pre-normalization value of column i, and then
// normalizes by the division raw/d (diagonals see the same sequence with
// j = k, multiplier L[k,i]). The blocked kernel performs the same
// subtractions in the same ascending-i order — panels left of j first,
// then the in-panel prefix — as separate statements (Go never fuses
// floating-point ops), keeps raw panel columns as multiplicands (f.rawPanel)
// instead of recomputing them from normalized values, normalizes by the
// same division, and clamps at column finalize exactly like the scalar
// row-end clamp. Zero raws normalize to +0 explicitly, matching the scalar
// skip-on-zero branch.
func (f *Factor) factorDenseTail(minPiv float64) {
	sym := f.sym
	n, tail := sym.n, sym.tail
	s := n - tail
	if s <= 0 {
		return
	}
	d := f.d
	f.rawPanel = growf(f.rawPanel, s*tailPanel)

	for p0 := 0; p0 < s; p0 += tailPanel {
		p1 := p0 + tailPanel
		if p1 > s {
			p1 = s
		}
		// Factor the panel's columns in place.
		for c := p0; c < p1; c++ {
			cc := f.dense[f.denseOff[c]:]
			dd := d[tail+c]
			for i := p0; i < c; i++ {
				lci := f.dense[f.denseOff[i]+int32(c-i-1)]
				ri := f.rawPanel[(i-p0)*s:]
				dd -= lci * ri[c]
				for k := c + 1; k < s; k++ {
					cc[k-c-1] -= lci * ri[k]
				}
			}
			if dd < minPiv {
				dd = minPiv
				f.Clamped++
			}
			d[tail+c] = dd
			rc := f.rawPanel[(c-p0)*s:]
			for k := c + 1; k < s; k++ {
				v := cc[k-c-1]
				rc[k] = v
				if v == 0 {
					cc[k-c-1] = 0 // matches the scalar skip: l is exactly +0
				} else {
					cc[k-c-1] = v / dd
				}
			}
		}
		// Rank-w update of the trailing block, register-tiled four panel
		// columns at a time. Each entry's updates stay ascending in i and
		// individually rounded (separate statements).
		for j := p1; j < s; j++ {
			cj := f.dense[f.denseOff[j]:]
			dj := d[tail+j]
			i := p0
			for ; i+3 < p1; i += 4 {
				l0 := f.dense[f.denseOff[i]+int32(j-i-1)]
				l1 := f.dense[f.denseOff[i+1]+int32(j-i-2)]
				l2 := f.dense[f.denseOff[i+2]+int32(j-i-3)]
				l3 := f.dense[f.denseOff[i+3]+int32(j-i-4)]
				r0 := f.rawPanel[(i-p0)*s:]
				r1 := f.rawPanel[(i+1-p0)*s:]
				r2 := f.rawPanel[(i+2-p0)*s:]
				r3 := f.rawPanel[(i+3-p0)*s:]
				dj -= l0 * r0[j]
				dj -= l1 * r1[j]
				dj -= l2 * r2[j]
				dj -= l3 * r3[j]
				for k := j + 1; k < s; k++ {
					t := cj[k-j-1]
					t -= l0 * r0[k]
					t -= l1 * r1[k]
					t -= l2 * r2[k]
					t -= l3 * r3[k]
					cj[k-j-1] = t
				}
			}
			for ; i < p1; i++ {
				li := f.dense[f.denseOff[i]+int32(j-i-1)]
				ri := f.rawPanel[(i-p0)*s:]
				dj -= li * ri[j]
				for k := j + 1; k < s; k++ {
					cj[k-j-1] -= li * ri[k]
				}
			}
			d[tail+j] = dj
		}
	}
}

// Solve overwrites b (in original index order) with M⁻¹·b using the last
// factorization: permute, L solve, D solve, Lᵀ solve, unpermute.
func (f *Factor) Solve(b []float64) {
	sym := f.sym
	if sym == nil {
		panic("chol: Solve before Factorize")
	}
	n, tail := sym.n, sym.tail
	if len(b) != n {
		panic(fmt.Sprintf("chol: Solve vector has length %d, want %d", len(b), n))
	}
	f.z = growf(f.z, n)
	z := f.z
	for k := 0; k < n; k++ {
		z[k] = b[sym.perm[k]]
	}
	// Forward: L z' = z.
	for j := 0; j < tail; j++ {
		zj := z[j]
		if zj == 0 {
			continue
		}
		pe := f.lp[j] + f.lnz[j]
		for p := f.lp[j]; p < pe; p++ {
			z[f.li[p]] -= f.lx[p] * zj
		}
	}
	for j := tail; j < n; j++ {
		zj := z[j]
		if zj == 0 {
			continue
		}
		col := f.dense[f.denseOff[j-tail]:]
		for r := j + 1; r < n; r++ {
			z[r] -= col[r-j-1] * zj
		}
	}
	// Diagonal.
	for k := 0; k < n; k++ {
		z[k] /= f.d[k]
	}
	// Backward: Lᵀ x = z, columns in descending order.
	for j := n - 1; j >= tail; j-- {
		col := f.dense[f.denseOff[j-tail]:]
		acc := z[j]
		for r := j + 1; r < n; r++ {
			acc -= col[r-j-1] * z[r]
		}
		z[j] = acc
	}
	for j := tail - 1; j >= 0; j-- {
		acc := z[j]
		pe := f.lp[j] + f.lnz[j]
		for p := f.lp[j]; p < pe; p++ {
			acc -= f.lx[p] * z[f.li[p]]
		}
		z[j] = acc
	}
	for k := 0; k < n; k++ {
		b[sym.perm[k]] = z[k]
	}
}
