package chol

import (
	"math"
	"math/rand"
	"testing"
)

// denseFromCSC expands a full symmetric CSC matrix to dense storage.
func denseFromCSC(n int, ptr, ind []int32, vals []float64) [][]float64 {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		for p := ptr[j]; p < ptr[j+1]; p++ {
			a[ind[p]][j] += vals[p]
		}
	}
	return a
}

// solveDense is the oracle: Gaussian elimination with partial pivoting.
func solveDense(a [][]float64, b []float64) []float64 {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for c := 0; c < n; c++ {
		piv := c
		for r := c + 1; r < n; r++ {
			if math.Abs(m[r][c]) > math.Abs(m[piv][c]) {
				piv = r
			}
		}
		m[c], m[piv] = m[piv], m[c]
		for r := c + 1; r < n; r++ {
			f := m[r][c] / m[c][c]
			if f == 0 {
				continue
			}
			for k := c; k <= n; k++ {
				m[r][k] -= f * m[c][k]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for k := r + 1; k < n; k++ {
			s -= m[r][k] * x[k]
		}
		x[r] = s / m[r][r]
	}
	return x
}

// randomSPD builds a full symmetric CSC matrix Q·Qᵀ + αI for a random
// sparse Q, optionally coupling the last `denseTail` indices all-to-all so
// the trailing block goes dense.
func randomSPD(rng *rand.Rand, n, nnzPerCol, denseTail int) (ptr, ind []int32, vals []float64) {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		col := make([]float64, n)
		for t := 0; t < nnzPerCol; t++ {
			col[rng.Intn(n)] = rng.NormFloat64()
		}
		for r1 := 0; r1 < n; r1++ {
			if col[r1] == 0 {
				continue
			}
			for r2 := 0; r2 < n; r2++ {
				if col[r2] != 0 {
					a[r1][r2] += col[r1] * col[r2]
				}
			}
		}
	}
	for i := 0; i < denseTail; i++ {
		for j := 0; j < denseTail; j++ {
			ri, rj := n-1-i, n-1-j
			a[ri][rj] += 0.1 * float64(1+(i+j)%3)
		}
	}
	for i := 0; i < n; i++ {
		a[i][i] += float64(n) // diagonal dominance ⇒ SPD
	}
	ptr = make([]int32, n+1)
	for j := 0; j < n; j++ {
		ptr[j+1] = ptr[j]
		for r := 0; r < n; r++ {
			if a[r][j] != 0 {
				ind = append(ind, int32(r))
				vals = append(vals, a[r][j])
				ptr[j+1]++
			}
		}
	}
	return ptr, ind, vals
}

func checkSolve(t *testing.T, n int, ptr, ind []int32, vals []float64, sym *Symbolic, f *Factor, rng *rand.Rand) {
	t.Helper()
	perm := make([]bool, n)
	for _, p := range sym.perm {
		if perm[p] {
			t.Fatalf("index %d repeated in permutation", p)
		}
		perm[p] = true
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := solveDense(denseFromCSC(n, ptr, ind, vals), b)
	got := append([]float64(nil), b...)
	f.Solve(got)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, want %g (tail=%d)", i, got[i], want[i], sym.TailSize())
		}
	}
}

func TestFactorizeMatchesDenseOracle(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(40)
		ptr, ind, vals := randomSPD(rng, n, 3, 0)
		sym := Analyze(n, ptr, ind)
		var f Factor
		sym.Factorize(ptr, ind, vals, 1e-12, &f)
		if f.Clamped != 0 {
			t.Fatalf("seed %d: %d pivots clamped on an SPD matrix", seed, f.Clamped)
		}
		checkSolve(t, n, ptr, ind, vals, sym, &f, rng)
	}
}

func TestDenseTailFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 96
	ptr, ind, vals := randomSPD(rng, n, 2, 40)
	sym := Analyze(n, ptr, ind)
	if sym.TailSize() < tailMinSize {
		t.Fatalf("dense-coupled trailing block not detected (tail size %d)", sym.TailSize())
	}
	var f Factor
	sym.Factorize(ptr, ind, vals, 1e-12, &f)
	checkSolve(t, n, ptr, ind, vals, sym, &f, rng)
}

func TestFactorReuseAcrossValues(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 60
	ptr, ind, vals := randomSPD(rng, n, 3, 20)
	sym := Analyze(n, ptr, ind)
	var f Factor
	for round := 0; round < 3; round++ {
		scaled := make([]float64, len(vals))
		scale := 1.0 + float64(round)
		for i, v := range vals {
			scaled[i] = v * scale
		}
		sym.Factorize(ptr, ind, scaled, 1e-12, &f)
		checkSolve(t, n, ptr, ind, scaled, sym, &f, rng)
	}
}

func TestTinyAndDiagonal(t *testing.T) {
	// n=0 and a pure diagonal matrix exercise the edges of the ordering and
	// the tail detection.
	sym := Analyze(0, []int32{0}, nil)
	if sym.N() != 0 {
		t.Fatal("empty analyze")
	}
	n := 5
	ptr := []int32{0, 1, 2, 3, 4, 5}
	ind := []int32{0, 1, 2, 3, 4}
	vals := []float64{2, 3, 4, 5, 6}
	sym = Analyze(n, ptr, ind)
	var f Factor
	sym.Factorize(ptr, ind, vals, 1e-12, &f)
	b := []float64{2, 3, 4, 5, 6}
	f.Solve(b)
	for i, want := range []float64{1, 1, 1, 1, 1} {
		if math.Abs(b[i]-want) > 1e-12 {
			t.Fatalf("diagonal solve b[%d]=%g", i, b[i])
		}
	}
}

func TestPivotClampCounts(t *testing.T) {
	// An indefinite matrix (negative diagonal) must clamp rather than
	// produce NaN/Inf.
	n := 3
	ptr := []int32{0, 1, 2, 3}
	ind := []int32{0, 1, 2}
	vals := []float64{-1, 2, 3}
	sym := Analyze(n, ptr, ind)
	var f Factor
	sym.Factorize(ptr, ind, vals, 1e-8, &f)
	if f.Clamped != 1 {
		t.Fatalf("Clamped = %d, want 1", f.Clamped)
	}
	for _, d := range f.d {
		if d < 1e-8 || math.IsNaN(d) {
			t.Fatalf("bad pivot %g after clamp", d)
		}
	}
}
