package chol

// minDegree computes a fill-reducing elimination order for a symmetric
// sparse pattern with an exact-external-degree minimum-degree heuristic on
// a quotient graph (Amestoy/Davis/Duff lineage, without supervariable
// detection): eliminating a variable replaces it and the elements it is
// adjacent to by one new element whose clique is the variable's current
// neighborhood, and the elements it absorbs are dropped. Ordering quality
// only affects performance — any permutation factorizes correctly — so the
// implementation favors simplicity over the last few percent of fill.
//
// When the uneliminated graph turns dense (minimum degree within
// denseBailFrac of a clique, or few nodes remain) the remaining variables
// are appended by ascending degree and the loop stops: they are exactly the
// dense trailing block the numeric factorization stores densely, and
// grinding exact degrees through a shrinking clique is Θ(s³) for nothing.
func minDegree(n int, ptr, ind []int32) []int32 {
	perm := make([]int32, 0, n)
	if n == 0 {
		return perm
	}
	adjV := make([][]int32, n)  // variable adjacency (shrinks over time)
	adjE := make([][]int32, n)  // element adjacency per variable
	elems := make([][]int32, n) // clique of the element created at v
	deg := make([]int32, n)
	elim := make([]bool, n)
	absorbed := make([]bool, n)
	mark := make([]int32, n)
	var stamp int32

	maxDeg := 0
	for v := 0; v < n; v++ {
		stamp++
		mark[v] = stamp
		var a []int32
		for p := ptr[v]; p < ptr[v+1]; p++ {
			u := ind[p]
			if mark[u] != stamp {
				mark[u] = stamp
				a = append(a, u)
			}
		}
		adjV[v] = a
		deg[v] = int32(len(a))
		if len(a) > maxDeg {
			maxDeg = len(a)
		}
	}

	// Degree buckets (doubly linked chains).
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	next := make([]int32, n)
	prev := make([]int32, n)
	insert := func(v int32, d int32) {
		next[v] = head[d]
		prev[v] = -1
		if head[d] >= 0 {
			prev[head[d]] = v
		}
		head[d] = v
	}
	remove := func(v int32, d int32) {
		if prev[v] >= 0 {
			next[prev[v]] = next[v]
		} else {
			head[d] = next[v]
		}
		if next[v] >= 0 {
			prev[next[v]] = prev[v]
		}
	}
	for v := int32(n - 1); v >= 0; v-- {
		insert(v, deg[v])
	}

	lv := make([]int32, 0, n)
	live := n
	minDeg := int32(0)
	for live > 0 {
		for head[minDeg] < 0 {
			minDeg++
		}
		v := head[minDeg]
		d := minDeg
		if live <= denseBailLive || float64(d) >= denseBailFrac*float64(live-1) {
			// Dense bail-out: append the remainder by ascending degree.
			for dd := minDeg; dd < int32(n) && live > 0; dd++ {
				for u := head[dd]; u >= 0; u = next[u] {
					perm = append(perm, u)
					live--
				}
			}
			return perm
		}
		remove(v, d)
		elim[v] = true
		live--

		// Lv: the variable's current neighborhood (its new element's clique).
		stamp++
		mark[v] = stamp
		lv = lv[:0]
		for _, u := range adjV[v] {
			if !elim[u] && mark[u] != stamp {
				mark[u] = stamp
				lv = append(lv, u)
			}
		}
		for _, e := range adjE[v] {
			if absorbed[e] {
				continue
			}
			absorbed[e] = true // its clique ⊆ the new element's
			for _, u := range elems[e] {
				if !elim[u] && mark[u] != stamp {
					mark[u] = stamp
					lv = append(lv, u)
				}
			}
			elems[e] = nil
		}
		perm = append(perm, v)
		elems[v] = append([]int32(nil), lv...)
		adjV[v], adjE[v] = nil, nil

		// mark still stamps {v} ∪ Lv: prune each member's plain adjacency of
		// everything the new element now covers, and swap absorbed elements
		// for the new one.
		for _, u := range lv {
			a := adjV[u][:0]
			for _, x := range adjV[u] {
				if !elim[x] && mark[x] != stamp {
					a = append(a, x)
				}
			}
			adjV[u] = a
			es := adjE[u][:0]
			for _, e := range adjE[u] {
				if !absorbed[e] {
					es = append(es, e)
				}
			}
			adjE[u] = append(es, v)
		}

		// Exact external degrees for the affected variables (elements are
		// compacted of eliminated members in passing).
		for _, u := range lv {
			stamp++
			mark[u] = stamp
			nd := int32(0)
			for _, x := range adjV[u] {
				if mark[x] != stamp {
					mark[x] = stamp
					nd++
				}
			}
			for _, e := range adjE[u] {
				el := elems[e][:0]
				for _, x := range elems[e] {
					if elim[x] {
						continue
					}
					el = append(el, x)
					if mark[x] != stamp {
						mark[x] = stamp
						nd++
					}
				}
				elems[e] = el
			}
			if nd != deg[u] {
				remove(u, deg[u])
				deg[u] = nd
				insert(u, nd)
			}
			if nd < minDeg {
				minDeg = nd
			}
		}
	}
	return perm
}

const (
	// denseBailLive stops the degree machinery when this few nodes remain.
	denseBailLive = 16
	// denseBailFrac stops it when the minimum degree says the remaining
	// graph is nearly a clique.
	denseBailFrac = 0.8
)
