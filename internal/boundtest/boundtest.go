// Package boundtest provides a recording core.BoundBus double for solver
// tests: a single-goroutine stub that logs every published value and lets
// tests prime the live bounds directly. Production code shares bounds via
// the concurrency-safe engine.Incumbent instead.
package boundtest

import "math"

// Bus is a core.BoundBus with directly settable bounds and publish logs.
type Bus struct {
	// U and L are the live upper/lower bounds; set them to prime the bus.
	U, L float64
	// UpperPubs and LowerPubs record every published value in order,
	// improving or not.
	UpperPubs, LowerPubs []float64
}

// New returns an empty bus (upper +Inf, lower 0).
func New() *Bus { return &Bus{U: math.Inf(1)} }

// Upper returns the current upper bound.
func (b *Bus) Upper() float64 { return b.U }

// Lower returns the current lower bound.
func (b *Bus) Lower() float64 { return b.L }

// PublishUpper records v and reports whether it improved the upper bound.
func (b *Bus) PublishUpper(v float64) bool {
	b.UpperPubs = append(b.UpperPubs, v)
	if v < b.U {
		b.U = v
		return true
	}
	return false
}

// PublishLower records v and reports whether it improved the lower bound.
func (b *Bus) PublishLower(v float64) bool {
	b.LowerPubs = append(b.LowerPubs, v)
	if v > b.L {
		b.L = v
		return true
	}
	return false
}
