package sched

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// Engine is a long-lived handle over a configured solver set: the unit of
// API the service mode is built from. An Engine owns
//
//   - its own solver registry (configurable via WithSolvers/WithRegistry —
//     the seam future LP backends and custom heuristics plug into),
//   - a bound cache keyed by canonical instance fingerprint
//     (Instance.Fingerprint): repeated solves of a fingerprint-identical
//     instance warm-start from the bounds and best schedule established by
//     earlier solves, so branch-and-bound searches are primed and
//     dual-approximation searches floored, and
//   - an event fan-out streaming anytime progress (incumbent improvements,
//     certified-bound updates) to subscribers.
//
// All methods are safe for concurrent use. Concurrency is bounded
// engine-wide by the governor, a weighted semaphore holding WithWorkers
// tokens (default GOMAXPROCS): every solve is admitted with one guaranteed
// token, and batch dispatch, portfolio member launches and speculative
// search width draw any extra parallelism from the same pool,
// acquire-or-degrade (see GovernorStats for the live occupancy). The
// package-level Solve/Portfolio/PTAS/… functions are thin wrappers over a
// lazily-built shared engine (DefaultEngine).
type Engine struct {
	reg      *engine.Registry
	cache    *engine.BoundCache
	states   *engine.StateStore // retained solve states for Resolve
	gov      *engine.Governor   // nil with WithUngoverned
	workers  int
	defaults []SolveOption

	mu   sync.RWMutex
	subs map[chan Event]struct{}
}

// New builds an Engine. With no options it carries the full paper solver
// set, a 256-fingerprint bound cache and a GOMAXPROCS-token governor.
func New(opts ...EngineOption) (*Engine, error) {
	cfg := engineConfig{workers: defaultWorkers(), cacheSize: engine.DefaultBoundCacheSize}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	reg := cfg.registry
	if reg == nil {
		reg = engine.NewDefaultRegistry()
	}
	if len(cfg.solvers) > 0 {
		subset := engine.NewRegistry()
		for _, name := range cfg.solvers {
			s, ok := reg.Get(name)
			if !ok {
				return nil, fmt.Errorf("sched: unknown solver %q (registered: %v)", name, reg.Names())
			}
			if err := subset.Register(s); err != nil {
				return nil, fmt.Errorf("sched: WithSolvers: %w", err)
			}
		}
		reg = subset
	}
	e := &Engine{
		reg:      reg,
		workers:  cfg.workers,
		defaults: cfg.defaults,
		subs:     make(map[chan Event]struct{}),
	}
	if !cfg.ungoverned {
		e.gov = engine.NewGovernor(cfg.workers)
	}
	if cfg.cacheSize > 0 {
		e.cache = engine.NewBoundCache(cfg.cacheSize)
	}
	// The retention store for Open/Resolve, sized from the same worker
	// budget that bounds concurrent solves: each retained state pins a
	// built LP relaxation, so it scales with how many delta streams the
	// engine can plausibly serve at once, not with the bound cache.
	stateCap := 2 * cfg.workers
	if stateCap < engine.DefaultStateStoreSize {
		stateCap = engine.DefaultStateStoreSize
	}
	e.states = engine.NewStateStore(stateCap)
	return e, nil
}

// Solvers returns the names of the engine's registered solvers, usable with
// WithAlgorithm.
func (e *Engine) Solvers() []string { return e.reg.Names() }

// SolverInfo describes one registered solver for listings and diagnostics.
type SolverInfo struct {
	// Name is the registry name (usable with WithAlgorithm).
	Name string
	// Guarantee is the human-readable approximation guarantee.
	Guarantee string
	// Priority orders automatic selection (highest applicable wins).
	Priority int
}

// SolverInfo lists the engine's solvers with their guarantees and selection
// priorities, in registration order.
func (e *Engine) SolverInfo() []SolverInfo {
	var out []SolverInfo
	for _, s := range e.reg.Solvers() {
		caps := s.Capabilities()
		out = append(out, SolverInfo{Name: s.Name(), Guarantee: caps.Guarantee, Priority: caps.Priority})
	}
	return out
}

// Applicable returns the names of the solvers whose capabilities match the
// instance, strongest first — the set a Portfolio call would race.
func (e *Engine) Applicable(in *Instance) []string {
	var out []string
	for _, s := range e.reg.Applicable(in, engine.Options{}) {
		out = append(out, s.Name())
	}
	return out
}

// CachedFingerprints returns the number of distinct instance fingerprints
// currently held by the warm-start bound cache (0 when caching is
// disabled).
func (e *Engine) CachedFingerprints() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.Len()
}

// CacheStats is a snapshot of the warm-start bound cache's effectiveness
// counters; see Engine.CacheStats.
type CacheStats struct {
	// Hits and Misses count exact-fingerprint lookups since the engine was
	// built (similarity probes are not counted — they only run on a miss).
	Hits, Misses int64
	// Entries is the number of distinct fingerprints currently cached.
	Entries int
}

// CacheStats reports the bound cache's lookup counters and current size.
// On a cache-less engine (WithBoundCache(0)) all fields are zero.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	hits, misses := e.cache.Stats()
	return CacheStats{Hits: hits, Misses: misses, Entries: e.cache.Len()}
}

// SaveBounds serializes the engine's bound cache to w (versioned JSON) so a
// later process can warm-start from this one's certified bounds; see
// LoadBounds and the `schedserve -cache-save` flag. On a cache-less engine
// it writes an empty snapshot.
func (e *Engine) SaveBounds(w io.Writer) error {
	if e.cache == nil {
		return engine.NewBoundCache(1).Snapshot(w)
	}
	return e.cache.Snapshot(w)
}

// LoadBounds merges a SaveBounds snapshot into the engine's bound cache.
// The merge is monotone — loaded bounds only ever improve what the cache
// already holds — so loading stale snapshots is always safe. It returns the
// number of snapshot entries merged; on a cache-less engine it reads and
// discards the snapshot.
func (e *Engine) LoadBounds(r io.Reader) (int, error) {
	if e.cache == nil {
		return engine.NewBoundCache(1).LoadSnapshot(r)
	}
	return e.cache.LoadSnapshot(r)
}

// Events subscribes to the engine's anytime progress stream: every bound
// improvement of every subsequent Solve, Portfolio and SolveBatch call is
// sent to the returned channel, stamped with the instance fingerprint so
// concurrent solves can be demultiplexed. buffer sizes the channel (values
// < 1 select a default of 64). Sends never block solvers: if the
// subscriber falls behind the buffer, improvements are dropped, not
// queued. The returned cancel function unsubscribes and closes the
// channel; it is idempotent.
//
// The event tap is installed at solve start: a solve that began while no
// subscriber (and no WithEvents channel) existed runs untapped and stays
// silent for its whole duration. A solve that began tapped broadcasts to
// whatever subscribers exist at each improvement, including ones added
// mid-solve.
func (e *Engine) Events(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	e.mu.Lock()
	e.subs[ch] = struct{}{}
	e.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			e.mu.Lock()
			delete(e.subs, ch)
			close(ch)
			e.mu.Unlock()
		})
	}
	return ch, cancel
}

// broadcast fans an event out to the call-local channel (if any) and every
// engine-level subscriber, never blocking: a full channel drops the event.
// Holding the read lock while sending is what makes closing a subscriber
// channel (done under the write lock) safe.
func (e *Engine) broadcast(ev Event, callCh chan<- Event) {
	if callCh != nil {
		select {
		case callCh <- ev:
		default:
		}
	}
	e.mu.RLock()
	for ch := range e.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	e.mu.RUnlock()
}

// config folds the engine defaults and the call's options into one
// solveConfig.
func (e *Engine) config(opts []SolveOption) solveConfig {
	var cfg solveConfig
	for _, o := range e.defaults {
		if o != nil {
			o(&cfg)
		}
	}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// hasSubscribers reports whether any engine-level Events subscriber is
// registered; with none (and no per-call channel) a solve runs untapped, so
// the steady-state overhead of the event layer is one RLock per solve.
func (e *Engine) hasSubscribers() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.subs) > 0
}

// Solve solves one instance through the engine: automatic
// strongest-applicable dispatch (or the WithAlgorithm solver), warm-started
// from the fingerprint cache, under the WithTimeout deadline, streaming
// progress to WithEvents/Events subscribers.
func (e *Engine) Solve(ctx context.Context, in *Instance, opts ...SolveOption) (Result, error) {
	return e.solveOne(ctx, in, e.config(opts))
}

// solveSession is the per-call warm-start state shared by Solve and
// Portfolio: the instance fingerprint, the seeded base bus, the cached
// knowledge it was seeded from, the instrumented engine options and the
// (possibly deadline-bounded) context.
type solveSession struct {
	fp     string
	in     *Instance
	base   BoundBus
	cached engine.CachedBounds
	hit    bool
	opt    engine.Options
	ctx    context.Context
	cancel context.CancelFunc
}

// begin opens a solve session: admit the solve through the governor (one
// guaranteed token, blocking until a lane frees or the deadline hits),
// look the fingerprint up in the cache, seed the bound bus, install the
// event tap and apply the per-request timeout. The fingerprint is only
// computed when something consumes it (the cache or an event listener), so
// a cache-less heuristics engine pays no hashing on its hot path. Callers
// must defer s.cancel() on success; it releases the admission token.
func (e *Engine) begin(ctx context.Context, in *Instance, cfg solveConfig) (solveSession, error) {
	s := solveSession{ctx: ctx}
	var cancelTimeout context.CancelFunc
	if cfg.timeout > 0 {
		// The deadline covers the whole call, admission wait included: a
		// solve stuck behind a saturated governor times out like any other.
		s.ctx, cancelTimeout = context.WithTimeout(ctx, cfg.timeout)
	}
	release := func() {}
	if e.gov != nil && !cfg.admitted {
		// Admission: the solve's one guaranteed compute lane. Everything
		// wider (portfolio members, search width) is acquire-or-degrade
		// inside the solve, so holding this token can never deadlock.
		if err := e.gov.Acquire(s.ctx); err != nil {
			if cancelTimeout != nil {
				cancelTimeout()
			}
			return solveSession{}, err
		}
		release = func() { e.gov.Release(1) }
	}
	var once sync.Once
	s.cancel = func() {
		once.Do(func() {
			if cancelTimeout != nil {
				cancelTimeout()
			}
			release()
		})
	}
	s.in = in
	tapped := cfg.events != nil || e.hasSubscribers()
	if e.cache != nil || tapped || cfg.retain {
		s.fp = in.Fingerprint()
	}
	if e.cache != nil && !cfg.cold {
		s.cached, s.hit = e.cache.Lookup(s.fp)
		if !s.hit {
			// Exact-fingerprint miss: probe the similarity index. A hit is a
			// schedule from a near-identical instance re-priced on this one
			// (never the stale bound), so its Upper is certified here too.
			s.cached, s.hit = e.cache.LookupSimilar(in, s.fp)
		}
	}
	if cfg.seed != nil {
		// Delta-derived knowledge about this exact instance (the patched
		// witness and lifted bounds) outranks whatever the cache held. It
		// applies even under WithoutWarmStart: the caller supplied it
		// explicitly, the option opts out of the cache.
		if !s.hit {
			s.cached = engine.CachedBounds{Upper: math.Inf(1)}
			s.hit = true
		}
		if cfg.seed.Schedule != nil && cfg.seed.Upper < s.cached.Upper {
			s.cached.Upper = cfg.seed.Upper
			s.cached.Schedule = cfg.seed.Schedule
			s.cached.Algorithm = cfg.seed.Algorithm
		}
		if cfg.seed.Lower > s.cached.Lower {
			s.cached.Lower = cfg.seed.Lower
		}
	}
	s.base = cfg.opt.Bounds
	if s.base == nil {
		s.base = engine.NewIncumbent()
	}
	if s.hit {
		// Warm start: prime the incumbent with the best makespan any
		// earlier solve of this fingerprint achieved (branch-and-bound
		// pruning thresholds start there; dual searches skip guesses at or
		// above it) and floor the lower bound (dual searches start
		// narrowed; gap watchers see the true remaining gap).
		s.base.PublishUpper(s.cached.Upper)
		s.base.PublishLower(s.cached.Lower)
	}
	s.opt = cfg.opt
	s.opt.Warm = cfg.warm
	if e.gov != nil {
		// The governor is the width authority: the solve's portfolio and
		// search layers draw extra parallelism from it live, so the static
		// per-solve SearchWorkers clamp of the ungoverned path is not
		// needed — concurrent solves share one pool instead of multiplying.
		s.opt.Budget = e.gov
	} else if s.opt.SearchWorkers > e.workers {
		// Ungoverned compatibility: WithWorkers caps each individual
		// solve's speculative width, and concurrent solves multiply.
		s.opt.SearchWorkers = e.workers
	}
	s.opt.Bounds = s.base
	if tapped {
		s.opt.Bounds = engine.NewEventBus(s.base, s.fp, func(ev Event) { e.broadcast(ev, cfg.events) })
	}
	return s, nil
}

// fail records what a failed session still learned: lower bounds certified
// on the bus before the failure are knowledge worth keeping.
func (e *Engine) fail(s solveSession) {
	if e.cache != nil {
		e.cache.Update(s.fp, engine.CachedBounds{Lower: s.base.Lower()})
	}
}

// solveOne runs one configured solve: seed the bound bus from the cache,
// dispatch (strongest-applicable, the named solver, or — with
// WithPortfolio — the full applicable race), then fold the outcome back
// into the cache.
func (e *Engine) solveOne(ctx context.Context, in *Instance, cfg solveConfig) (Result, error) {
	s, err := e.begin(ctx, in, cfg)
	if err != nil {
		return Result{}, err
	}
	defer s.cancel()
	var ret engine.RetainedState
	if cfg.retain {
		// Ask the solver for its retainable warm-start state (the rounding
		// solver hands back its LP relaxation and accepted bracket edge);
		// combined with the result below it becomes the SolveState a later
		// Resolve consumes.
		s.opt.Retain = func(r engine.RetainedState) { ret = r }
	}
	var res Result
	switch {
	case cfg.portfolio:
		pr, perr := e.reg.Portfolio(s.ctx, in, s.opt)
		res, err = pr.Best, perr
	case cfg.algorithm != "":
		res, err = e.reg.SolveNamed(s.ctx, cfg.algorithm, in, s.opt)
	default:
		res, err = e.reg.Solve(s.ctx, in, s.opt)
	}
	if err != nil {
		e.fail(s)
		return Result{}, err
	}
	res, _ = e.finish(s, res)
	if cfg.retain && res.Schedule != nil {
		e.states.Put(&engine.SolveState{
			Fingerprint: s.fp,
			Instance:    in,
			Schedule:    res.Schedule.Clone(),
			Upper:       res.Makespan,
			Lower:       res.LowerBound,
			Accepted:    ret.Accepted,
			Rel:         ret.Rel,
			Algorithm:   res.Algorithm,
		})
	}
	return res, nil
}

// finish closes a session by reconciling a solver result with the cached
// knowledge for the fingerprint: the returned result is never worse than
// what the cache already held (warm starts are monotone), its lower bound
// absorbs every certified bound seen, and the cache is updated for future
// solves. The bool reports whether the cached schedule was substituted for
// the run's own.
func (e *Engine) finish(s solveSession, res Result) (Result, bool) {
	substituted := false
	if s.hit && s.cached.Schedule != nil && s.cached.Upper < res.Makespan-core.Eps {
		substituted = true
		// The warm-start seed beat this run (typical when the cached bound
		// is already optimal: a primed branch-and-bound proves nothing
		// better exists without re-finding the witness, and a primed dual
		// search skips every guess at or above it). Hand back the cached
		// schedule; Nodes still reports this run's effort.
		res.Note = fmt.Sprintf(
			"warm start: returning the cached %s schedule (makespan %g) from an earlier solve of this fingerprint; this run's %s reached %g",
			s.cached.Algorithm, s.cached.Upper, res.Algorithm, res.Makespan)
		res.Schedule = s.cached.Schedule
		res.Makespan = s.cached.Upper
		res.Algorithm = s.cached.Algorithm
	}
	if l := s.base.Lower(); l > res.LowerBound {
		res.LowerBound = l
	}
	if s.hit && s.cached.Lower > res.LowerBound {
		res.LowerBound = s.cached.Lower
	}
	if res.LowerBound > res.Makespan {
		res.LowerBound = res.Makespan
	}
	if e.cache != nil {
		e.cache.Update(s.fp, engine.CachedBounds{
			Upper:     res.Makespan,
			Lower:     res.LowerBound,
			Schedule:  res.Schedule,
			Algorithm: res.Algorithm,
			SimKey:    s.in.SimilarityKey(),
		})
	}
	return res, substituted
}

// Portfolio races every applicable solver concurrently and keeps the best
// schedule (see the package Portfolio function for the racing semantics).
// On an Engine the race is additionally warm-started from the fingerprint
// cache, streams every incumbent and bound improvement to event
// subscribers live, and feeds its final bounds back into the cache.
// WithAlgorithm is ignored — a portfolio always races the whole applicable
// set.
func (e *Engine) Portfolio(ctx context.Context, in *Instance, opts ...SolveOption) (PortfolioResult, error) {
	s, err := e.begin(ctx, in, e.config(opts))
	if err != nil {
		return PortfolioResult{}, err
	}
	defer s.cancel()
	pr, err := e.reg.Portfolio(s.ctx, in, s.opt)
	if err != nil {
		e.fail(s)
		return PortfolioResult{}, err
	}
	var substituted bool
	pr.Best, substituted = e.finish(s, pr.Best)
	if substituted {
		// Best no longer comes from any raced member; keep Winner naming
		// the algorithm that actually produced the returned schedule (the
		// cached one — Best.Note carries the full provenance).
		pr.Winner = pr.Best.Algorithm
	}
	return pr, nil
}

// BatchResult is one instance's outcome within a SolveBatch call.
type BatchResult struct {
	// Instance is the solved instance (as passed in).
	Instance *Instance
	// Result is the solve outcome; meaningful only when Err is nil.
	Result Result
	// Err is the per-instance failure: a solver error, the batch context's
	// cancellation, or a nil instance. Other instances are unaffected.
	Err error
	// Elapsed is the instance's wall-clock solve time inside the batch.
	Elapsed time.Duration
}

// SolveBatch solves many instances through a bounded worker pool — the
// engine's service mode. The pool is sized by the governor's token budget
// (WithWorkers), and each worker acquires one governor token per instance
// before solving it, so concurrent batches (and concurrent Solve calls)
// share the engine-wide budget fairly instead of each claiming a full
// pool. Every instance gets its own deadline when WithTimeout is set (per
// request, from the moment a worker picks it up), shares the engine's
// fingerprint cache (repeated instances in one batch warm-start each
// other) and streams progress to event subscribers tagged with its
// fingerprint.
//
// The returned slice is index-aligned with ins and always has one entry per
// instance: cancelling ctx stops the batch early, marking the unsolved
// remainder with the context's error. Per-instance failures land in
// BatchResult.Err; SolveBatch itself does not fail.
func (e *Engine) SolveBatch(ctx context.Context, ins []*Instance, opts ...SolveOption) []BatchResult {
	cfg := e.config(opts)
	// A WithBounds bus is a per-instance contract: its bounds are trusted
	// as certified knowledge about the one instance being solved. Batch
	// options apply to every instance, so sharing one caller bus across
	// fingerprint-distinct instances would cross-contaminate certified
	// bounds (instance A's lower bound poisoning instance B's result and
	// cache entry). Drop it; the engine's own per-solve buses and the
	// fingerprint cache provide the batch warm-start path.
	cfg.opt.Bounds = nil
	out := make([]BatchResult, len(ins))
	if len(ins) == 0 {
		return out
	}
	workers := e.workers
	if e.gov != nil {
		workers = e.gov.Cap()
		// Each batch worker holds the governor token for its current job
		// (acquired below, per instance); solveOne must not acquire a
		// second one for the same solve.
		cfg.admitted = true
	}
	if workers > len(ins) {
		workers = len(ins)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				br := BatchResult{Instance: ins[i]}
				switch {
				case ctx.Err() != nil:
					br.Err = ctx.Err()
				case ins[i] == nil:
					br.Err = fmt.Errorf("sched: batch instance %d is nil", i)
				default:
					if e.gov != nil {
						// Admission per instance, not per worker lifetime:
						// tokens return to the pool between jobs, so other
						// engine traffic interleaves with a long batch.
						if err := e.gov.Acquire(ctx); err != nil {
							br.Err = err
							break
						}
						br.Result, br.Err = e.solveOne(ctx, ins[i], cfg)
						e.gov.Release(1)
					} else {
						br.Result, br.Err = e.solveOne(ctx, ins[i], cfg)
					}
				}
				br.Elapsed = time.Since(start)
				out[i] = br
			}
		}()
	}
	for i := range ins {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// GovernorStats is a snapshot of the engine governor's occupancy counters;
// see Engine.GovernorStats.
type GovernorStats = engine.GovernorStats

// GovernorStats reports the governor's live occupancy: the token budget,
// tokens currently in use, the high-water mark, how many admissions had to
// wait for a token, and how many acquire-or-degrade requests were granted
// fewer tokens than asked (each such grant shrank a portfolio launch or a
// speculative search round). On an ungoverned engine (WithUngoverned) all
// fields are zero.
func (e *Engine) GovernorStats() GovernorStats {
	if e.gov == nil {
		return GovernorStats{}
	}
	return e.gov.Stats()
}

// --- solver plug-in surface -------------------------------------------------

// Solver is one schedulable algorithm behind the engine registry; see
// NewSolver for building one from a plain function.
type Solver = engine.Solver

// SolverCaps declares what instances a Solver handles and how strong it is.
type SolverCaps = engine.Caps

// Registry holds named solvers; build one with NewRegistry (empty) or
// NewDefaultRegistry (the paper set) and hand it to New via WithRegistry.
type Registry = engine.Registry

// NewRegistry returns an empty solver registry.
func NewRegistry() *Registry { return engine.NewRegistry() }

// NewDefaultRegistry returns a fresh registry holding the full paper solver
// set — the starting point for engines that add custom solvers on top.
func NewDefaultRegistry() *Registry { return engine.NewDefaultRegistry() }

// NewSolver builds a Solver from a name, capabilities and a solve function:
// the hook alternative LP backends and custom heuristics use to plug into
// an Engine. The solve function must observe ctx and, when opt.Bounds is
// non-nil, should publish improved makespans and certified lower bounds to
// participate in portfolio races and event streams.
func NewSolver(name string, caps SolverCaps, solve func(ctx context.Context, in *Instance, opt SolveOptions) (Result, error)) Solver {
	return engine.NewSolver(name, caps, solve)
}

// Registered solver names of the paper set, usable with WithAlgorithm,
// WithSolvers and the schedsolve -algo flag.
const (
	AlgoLPT      = engine.NameLPT
	AlgoGreedy   = engine.NameGreedy
	AlgoPTAS     = engine.NamePTAS
	AlgoRounding = engine.NameRounding
	AlgoRA2      = engine.NameRA2
	AlgoPT3      = engine.NamePT3
	AlgoExact    = engine.NameExact
)

// BoundBus is a live, concurrency-safe exchange of makespan bounds; see
// WithBounds for connecting one to a solve.
type BoundBus = core.BoundBus

// NewBoundBus returns an empty bound bus (upper +Inf, lower 0) suitable for
// WithBounds: a caller-owned warm-start channel that outlives any one
// engine.
func NewBoundBus() BoundBus { return engine.NewIncumbent() }

// Event is one anytime-progress signal: an improved incumbent makespan or
// certified lower bound, stamped with the instance fingerprint and the time
// since its solve started.
type Event = engine.Event

// EventKind distinguishes incumbent improvements from lower-bound updates.
type EventKind = engine.EventKind

// Event kinds.
const (
	EventIncumbent  = engine.EventIncumbent
	EventLowerBound = engine.EventLowerBound
)
